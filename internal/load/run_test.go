package load

import (
	"bytes"
	"net/http"
	"runtime"
	"testing"
	"time"

	"emx/internal/cluster"
	"emx/internal/labd"
	"emx/internal/labd/service"
)

// hugeScale shrinks every panel to its minimum grid so lab-backed load
// runs stay fast.
const hugeScale = 1 << 20

func newLabTarget(t *testing.T, nodes int) (*Lab, *cluster.Client) {
	t.Helper()
	lab, err := NewLab(nodes, service.Options{
		Sched: labd.Options{Workers: 2, QueueSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	m := cluster.NewMembership(lab.URLs(), cluster.MembershipOptions{})
	t.Cleanup(m.Close)
	return lab, cluster.NewClient(m, cluster.ClientOptions{})
}

// TestSeedDeterminism is the tentpole acceptance check: the same seed
// must produce a byte-identical report outside the host block, no
// matter how many clients issue the traffic or how many OS threads the
// runtime schedules them on.
func TestSeedDeterminism(t *testing.T) {
	runOnce := func(procs, clients int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		lab, client := newLabTarget(t, 3)
		rep, err := Run(client, lab, Options{
			Mode:     "closed",
			Requests: 30,
			Clients:  clients,
			Seed:     42,
			Space:    DefaultSpace(hugeScale, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Traffic.Errors != 0 {
			t.Fatalf("run with %d clients saw %d errors", clients, rep.Traffic.Errors)
		}
		if rep.Host == nil || rep.Host.SLO["/v1/run"].P50Seconds < 0 {
			t.Fatal("host SLO block missing")
		}
		// Config legitimately echoes the differing client counts; the
		// traffic block is the part that must not see concurrency.
		noHost := rep.WithoutHost()
		noHost.Config.Clients = 0
		var buf bytes.Buffer
		if err := noHost.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runOnce(1, 1)
	parallel := runOnce(8, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("report depends on concurrency:\n--- GOMAXPROCS=1 clients=1 ---\n%s\n--- GOMAXPROCS=8 clients=8 ---\n%s",
			serial, parallel)
	}
}

// TestChaosKillFailover kills the node that owns a known mid-run
// request; the cluster client must absorb the loss (zero client-
// visible errors) and the failover counters must show it happened.
func TestChaosKillFailover(t *testing.T) {
	lab, client := newLabTarget(t, 3)
	gen, err := NewGenerator(42, DefaultSpace(hugeScale, 1), DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	// With one client, global issue order is index order, so request 10
	// is the 10th issued: killing its owner just before it is issued
	// guarantees at least one failover.
	owner := cluster.NewRing(lab.URLs()).Owner(gen.Request(10).Key)
	victim := -1
	for i, u := range lab.URLs() {
		if u == owner {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not a lab node", owner)
	}
	rep, err := Run(client, lab, Options{
		Mode:     "closed",
		Requests: 25,
		Clients:  1,
		Seed:     42,
		Space:    DefaultSpace(hugeScale, 1),
		Chaos:    []Step{{Action: "kill", Node: victim, AtRequest: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 0 {
		t.Fatalf("node kill leaked %d errors to the client", rep.Traffic.Errors)
	}
	if rep.Host.Client.Failovers == 0 {
		t.Fatal("owner died mid-run but no failover was counted")
	}
	if rep.Chaos == nil || rep.Chaos.Fired != 1 {
		t.Fatalf("chaos block wrong: %+v", rep.Chaos)
	}
}

// TestChaosDelayAndRestart exercises the remaining fault actions and
// the post-restart probe hook.
func TestChaosDelayAndRestart(t *testing.T) {
	lab, client := newLabTarget(t, 2)
	probed := 0
	rep, err := Run(client, lab, Options{
		Mode:     "closed",
		Requests: 16,
		Clients:  2,
		Seed:     3,
		Space:    DefaultSpace(hugeScale, 1),
		Chaos: []Step{
			{Action: "delay", Node: 0, AtRequest: 2, DelayMS: 5},
			{Action: "clear", Node: 0, AtRequest: 6},
			{Action: "kill", Node: 1, AtRequest: 8},
			{Action: "restart", Node: 1, AtRequest: 12},
		},
		Probe: func() { probed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 0 {
		t.Fatalf("fault schedule leaked %d errors", rep.Traffic.Errors)
	}
	if rep.Chaos.Fired != 4 || len(rep.Chaos.Errors) != 0 {
		t.Fatalf("chaos block: %+v", rep.Chaos)
	}
	if probed != 1 {
		t.Fatalf("restart probe hook ran %d times, want 1", probed)
	}
}

// TestOpenLoopAndRamp drives the two rate-based modes end to end at a
// high offered rate so the test stays fast.
func TestOpenLoopAndRamp(t *testing.T) {
	lab, client := newLabTarget(t, 2)
	rep, err := Run(client, lab, Options{
		Mode:     "open",
		Requests: 12,
		Rate:     200,
		Seed:     5,
		Space:    DefaultSpace(hugeScale, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Issued != 12 || rep.Traffic.Errors != 0 {
		t.Fatalf("open loop: %+v", rep.Traffic)
	}
	if rep.Config.RateRPS != 200 {
		t.Fatalf("open config: %+v", rep.Config)
	}

	rep, err = Run(client, lab, Options{
		Mode:      "ramp",
		Requests:  6,
		Seed:      5,
		Space:     DefaultSpace(hugeScale, 1),
		RampStart: 100,
		RampStep:  100,
		RampSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Issued != 12 {
		t.Fatalf("ramp issued %d, want 12", rep.Traffic.Issued)
	}
	if len(rep.Host.Ramp) != 2 {
		t.Fatalf("ramp rows: %+v", rep.Host.Ramp)
	}
	for i, row := range rep.Host.Ramp {
		if row.OfferedRPS != 100*float64(i+1) {
			t.Fatalf("ramp row %d offered %v", i, row.OfferedRPS)
		}
	}
}

// TestDeadlineExpiredClientSide stamps an immediately-expiring
// deadline on every request: the cluster client must give up without
// attempting, and the run must account every request as an error.
func TestDeadlineExpiredClientSide(t *testing.T) {
	lab, client := newLabTarget(t, 1)
	rep, err := Run(client, lab, Options{
		Mode:     "closed",
		Requests: 4,
		Clients:  1,
		Seed:     9,
		Space:    DefaultSpace(hugeScale, 1),
		Deadline: time.Nanosecond,
		Mix:      Mix{Run: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 4 {
		t.Fatalf("expired deadlines should fail all 4 requests, got %+v", rep.Traffic)
	}
	if rep.Config.DeadlineMS != 0 {
		t.Fatalf("sub-millisecond deadline rounds to 0 ms, got %d", rep.Config.DeadlineMS)
	}
}

// TestDeadlineShedAtNode drives a request with an already-expired
// DeadlineHeader straight at a lab node: the serving path must shed it
// with 503 + Retry-After rather than burn a worker on it.
func TestDeadlineShedAtNode(t *testing.T) {
	lab, _ := newLabTarget(t, 1)
	gen, err := NewGenerator(9, DefaultSpace(hugeScale, 1), Mix{Run: 1})
	if err != nil {
		t.Fatal(err)
	}
	genReq := gen.Request(0)
	req, err := http.NewRequest(http.MethodPost, lab.URLs()[0]+genReq.Endpoint, bytes.NewReader(genReq.Body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.DeadlineHeader, service.FormatDeadline(time.Unix(1, 0)))
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline got %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
}
