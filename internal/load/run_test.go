package load

import (
	"bytes"
	"net/http"
	"runtime"
	"testing"
	"time"

	"emx/internal/cluster"
	"emx/internal/labd"
	"emx/internal/labd/service"
)

// hugeScale shrinks every panel to its minimum grid so lab-backed load
// runs stay fast.
const hugeScale = 1 << 20

func newLabTarget(t *testing.T, nodes int) (*Lab, *cluster.Client) {
	t.Helper()
	lab, err := NewLab(nodes, service.Options{
		Sched: labd.Options{Workers: 2, QueueSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	m := cluster.NewMembership(lab.URLs(), cluster.MembershipOptions{})
	t.Cleanup(m.Close)
	return lab, cluster.NewClient(m, cluster.ClientOptions{})
}

// TestSeedDeterminism is the tentpole acceptance check: the same seed
// must produce a byte-identical report outside the host block, no
// matter how many clients issue the traffic or how many OS threads the
// runtime schedules them on.
func TestSeedDeterminism(t *testing.T) {
	runOnce := func(procs, clients int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		lab, client := newLabTarget(t, 3)
		rep, err := Run(client, lab, Options{
			Mode:     "closed",
			Requests: 30,
			Clients:  clients,
			Seed:     42,
			Space:    DefaultSpace(hugeScale, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Traffic.Errors != 0 {
			t.Fatalf("run with %d clients saw %d errors", clients, rep.Traffic.Errors)
		}
		if rep.Host == nil || rep.Host.SLO["/v1/run"].P50Seconds < 0 {
			t.Fatal("host SLO block missing")
		}
		// Config legitimately echoes the differing client counts; the
		// traffic block is the part that must not see concurrency.
		noHost := rep.WithoutHost()
		noHost.Config.Clients = 0
		var buf bytes.Buffer
		if err := noHost.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runOnce(1, 1)
	parallel := runOnce(8, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("report depends on concurrency:\n--- GOMAXPROCS=1 clients=1 ---\n%s\n--- GOMAXPROCS=8 clients=8 ---\n%s",
			serial, parallel)
	}
}

// TestChaosKillFailover kills the node that owns a known mid-run
// request; the cluster client must absorb the loss (zero client-
// visible errors) and the failover counters must show it happened.
func TestChaosKillFailover(t *testing.T) {
	lab, client := newLabTarget(t, 3)
	gen, err := NewGenerator(42, DefaultSpace(hugeScale, 1), DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	// With one client, global issue order is index order, so request 10
	// is the 10th issued: killing its owner just before it is issued
	// guarantees at least one failover.
	owner := cluster.NewRing(lab.URLs()).Owner(gen.Request(10).Key)
	victim := -1
	for i, u := range lab.URLs() {
		if u == owner {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not a lab node", owner)
	}
	rep, err := Run(client, lab, Options{
		Mode:     "closed",
		Requests: 25,
		Clients:  1,
		Seed:     42,
		Space:    DefaultSpace(hugeScale, 1),
		Chaos:    []Step{{Action: "kill", Node: victim, AtRequest: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 0 {
		t.Fatalf("node kill leaked %d errors to the client", rep.Traffic.Errors)
	}
	if rep.Host.Client.Failovers == 0 {
		t.Fatal("owner died mid-run but no failover was counted")
	}
	if rep.Chaos == nil || rep.Chaos.Fired != 1 {
		t.Fatalf("chaos block wrong: %+v", rep.Chaos)
	}
}

// newReplicatedLabTarget is newLabTarget with R-way cache replication
// on the nodes and replica-aware failover on the client.
func newReplicatedLabTarget(t *testing.T, nodes, replicas int) (*Lab, *cluster.Client) {
	t.Helper()
	lab, err := NewLab(nodes, service.Options{
		Sched:       labd.Options{Workers: 2, QueueSize: 256},
		Replication: service.ReplicationOptions{Replicas: replicas},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	m := cluster.NewMembership(lab.URLs(), cluster.MembershipOptions{})
	t.Cleanup(m.Close)
	return lab, cluster.NewClient(m, cluster.ClientOptions{Replicas: replicas})
}

// TestChaosOwnerKillReplicated is the replication acceptance test at
// the traffic level: with R=2, re-running fully cached traffic while
// killing the one node guaranteed to hold a point's primary copy must
// produce zero client-visible errors AND zero recomputations — every
// post-kill answer comes from a replica copy, not a fresh execution.
func TestChaosOwnerKillReplicated(t *testing.T) {
	lab, client := newReplicatedLabTarget(t, 3, 2)
	// No profiles: a failed-over profile re-renders its trace inline,
	// which is deliberate recomputation and would blur the zero-delta
	// assertion below.
	opts := Options{
		Mode:     "closed",
		Requests: 40,
		Clients:  1,
		Seed:     42,
		Space:    DefaultSpace(hugeScale, 1),
		Mix:      Mix{Run: 6, Figure: 2},
	}

	// Phase 1 populates every cache and pushes each entry to its second
	// ranked replica.
	warm, err := Run(client, lab, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Traffic.Errors != 0 {
		t.Fatalf("warmup saw %d errors", warm.Traffic.Errors)
	}
	if warm.Host.Replication == nil {
		t.Fatal("replicated lab report carries no replication block")
	}
	if warm.Host.Replication.Pushes == 0 || warm.Host.Replication.Stores == 0 {
		t.Fatalf("warmup replicated nothing: %+v", warm.Host.Replication)
	}
	if !lab.FlushReplication(5 * time.Second) {
		t.Fatal("replication queues did not drain")
	}
	executed := lab.RunsExecuted()
	if executed == 0 {
		t.Fatal("warmup executed nothing")
	}

	// Phase 2 re-issues the identical traffic while killing the owner of
	// a figure request just before it fires: the failover node must
	// serve the whole panel from replica copies (local pushes plus peer
	// fills), never the simulator.
	gen, err := NewGenerator(opts.Seed, opts.Space, opts.Mix)
	if err != nil {
		t.Fatal(err)
	}
	figAt := uint64(0)
	for i := uint64(2); i < uint64(opts.Requests); i++ {
		if gen.Request(i).Endpoint == "/v1/figure" {
			figAt = i
			break
		}
	}
	if figAt == 0 {
		t.Fatal("no figure request in the traffic; widen the mix")
	}
	opts.Chaos = []Step{{Action: "kill", Owner: true, AtRequest: figAt}}
	rep, err := Run(client, lab, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 0 {
		t.Fatalf("owner kill leaked %d errors through R=2 replication", rep.Traffic.Errors)
	}
	if rep.Chaos == nil || rep.Chaos.Fired != 1 || len(rep.Chaos.Errors) != 0 {
		t.Fatalf("chaos block wrong: %+v", rep.Chaos)
	}
	if got := lab.RunsExecuted(); got != executed {
		t.Fatalf("owner kill recomputed %d previously cached points", got-executed)
	}
	if rep.Host.Replication.Fills == 0 {
		t.Fatalf("no peer fills despite a failed-over figure sweep: %+v", rep.Host.Replication)
	}

	// The text report surfaces the replication counters.
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text.Bytes(), []byte("replication:")) {
		t.Fatalf("text report lacks the replication line:\n%s", text.String())
	}
}

// TestChaosDelayAndRestart exercises the remaining fault actions and
// the post-restart probe hook.
func TestChaosDelayAndRestart(t *testing.T) {
	lab, client := newLabTarget(t, 2)
	probed := 0
	rep, err := Run(client, lab, Options{
		Mode:     "closed",
		Requests: 16,
		Clients:  2,
		Seed:     3,
		Space:    DefaultSpace(hugeScale, 1),
		Chaos: []Step{
			{Action: "delay", Node: 0, AtRequest: 2, DelayMS: 5},
			{Action: "clear", Node: 0, AtRequest: 6},
			{Action: "kill", Node: 1, AtRequest: 8},
			{Action: "restart", Node: 1, AtRequest: 12},
		},
		Probe: func() { probed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 0 {
		t.Fatalf("fault schedule leaked %d errors", rep.Traffic.Errors)
	}
	if rep.Chaos.Fired != 4 || len(rep.Chaos.Errors) != 0 {
		t.Fatalf("chaos block: %+v", rep.Chaos)
	}
	if probed != 1 {
		t.Fatalf("restart probe hook ran %d times, want 1", probed)
	}
}

// TestOpenLoopAndRamp drives the two rate-based modes end to end at a
// high offered rate so the test stays fast.
func TestOpenLoopAndRamp(t *testing.T) {
	lab, client := newLabTarget(t, 2)
	rep, err := Run(client, lab, Options{
		Mode:     "open",
		Requests: 12,
		Rate:     200,
		Seed:     5,
		Space:    DefaultSpace(hugeScale, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Issued != 12 || rep.Traffic.Errors != 0 {
		t.Fatalf("open loop: %+v", rep.Traffic)
	}
	if rep.Config.RateRPS != 200 {
		t.Fatalf("open config: %+v", rep.Config)
	}

	rep, err = Run(client, lab, Options{
		Mode:      "ramp",
		Requests:  6,
		Seed:      5,
		Space:     DefaultSpace(hugeScale, 1),
		RampStart: 100,
		RampStep:  100,
		RampSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Issued != 12 {
		t.Fatalf("ramp issued %d, want 12", rep.Traffic.Issued)
	}
	if len(rep.Host.Ramp) != 2 {
		t.Fatalf("ramp rows: %+v", rep.Host.Ramp)
	}
	for i, row := range rep.Host.Ramp {
		if row.OfferedRPS != 100*float64(i+1) {
			t.Fatalf("ramp row %d offered %v", i, row.OfferedRPS)
		}
	}
	if rep.Host.Saturated == nil {
		t.Fatal("ramp report missing the explicit saturated marker")
	}
}

// TestRampReportsUnsaturated is the regression test for the ambiguous
// knee: when no offered rate achieves 90%, the report used to show
// knee_rps 0 — indistinguishable from a knee at rate 0. The ramp block
// must carry an explicit saturated:false marker instead.
func TestRampReportsUnsaturated(t *testing.T) {
	lab, client := newLabTarget(t, 1)
	// Make the node far too slow for the offered rates: every segment
	// achieves well under 90% of offer, so no knee exists.
	node, err := lab.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	node.Delay(100 * time.Millisecond)
	defer node.Clear()

	rep, err := Run(client, lab, Options{
		Mode:      "ramp",
		Requests:  4,
		Seed:      7,
		Space:     DefaultSpace(hugeScale, 1),
		Mix:       Mix{Run: 1},
		RampStart: 500,
		RampStep:  500,
		RampSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Host.KneeRPS != 0 {
		t.Fatalf("KneeRPS = %v, want 0 (nothing achieved 90%%)", rep.Host.KneeRPS)
	}
	if rep.Host.Saturated == nil || *rep.Host.Saturated {
		t.Fatalf("Saturated = %v, want explicit false", rep.Host.Saturated)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"saturated": false`)) {
		t.Fatalf("JSON report lacks the explicit saturated:false marker:\n%s", buf.String())
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text.Bytes(), []byte("knee: none")) {
		t.Fatalf("text report does not call out the missing knee:\n%s", text.String())
	}
}

// TestDeadlineExpiredClientSide stamps an immediately-expiring
// deadline on every request: the cluster client must give up without
// attempting, and the run must account every request as an error.
func TestDeadlineExpiredClientSide(t *testing.T) {
	lab, client := newLabTarget(t, 1)
	rep, err := Run(client, lab, Options{
		Mode:     "closed",
		Requests: 4,
		Clients:  1,
		Seed:     9,
		Space:    DefaultSpace(hugeScale, 1),
		Deadline: time.Nanosecond,
		Mix:      Mix{Run: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traffic.Errors != 4 {
		t.Fatalf("expired deadlines should fail all 4 requests, got %+v", rep.Traffic)
	}
	if rep.Config.DeadlineMS != 0 {
		t.Fatalf("sub-millisecond deadline rounds to 0 ms, got %d", rep.Config.DeadlineMS)
	}
}

// TestDeadlineShedAtNode drives a request with an already-expired
// DeadlineHeader straight at a lab node: the serving path must shed it
// with 503 + Retry-After rather than burn a worker on it.
func TestDeadlineShedAtNode(t *testing.T) {
	lab, _ := newLabTarget(t, 1)
	gen, err := NewGenerator(9, DefaultSpace(hugeScale, 1), Mix{Run: 1})
	if err != nil {
		t.Fatal(err)
	}
	genReq := gen.Request(0)
	req, err := http.NewRequest(http.MethodPost, lab.URLs()[0]+genReq.Endpoint, bytes.NewReader(genReq.Body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.DeadlineHeader, service.FormatDeadline(time.Unix(1, 0)))
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline got %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
}
