// Package load is a deterministic traffic lab for the emxd/emxcluster
// serving path. It synthesizes request mixes over /v1/run, /v1/figure,
// and /v1/profile from a single seed, drives them at a target (an
// in-process cluster or external nodes) in open- or closed-loop mode,
// accounts latency and error SLOs, and optionally injects faults from
// a scripted chaos schedule.
//
// The design constraint is reproducibility: the i-th request is a pure
// function of (seed, i), so the multiset of requests a run issues is
// identical regardless of client count, goroutine interleaving, or
// GOMAXPROCS. Everything timing-dependent in the report lives under a
// single "host" key; the rest is byte-deterministic for a given seed.
package load

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"emx/internal/cluster"
	"emx/internal/harness"
	"emx/internal/labd/service"
)

// splitmix64 is the per-index mixing function: one full avalanche pass
// over a 64-bit counter. It is the same finalizer family the routing
// ring uses, chosen here so request derivation needs no math/rand and
// no mutable generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draws is a stateless stream of uniform draws for one request index.
// Each call advances a counter through splitmix64, so draw k of index
// i is a pure function of (seed, i, k).
type draws struct {
	base uint64
	k    uint64
}

func drawsAt(seed int64, index uint64) *draws {
	return &draws{base: splitmix64(uint64(seed)) ^ splitmix64(index+0x5bf03635)}
}

func (d *draws) next() uint64 {
	d.k++
	return splitmix64(d.base + d.k)
}

// intn returns a draw in [0, n). n must be > 0.
func (d *draws) intn(n int) int {
	return int(d.next() % uint64(n))
}

// float64 returns a draw in (0, 1] — never zero, so it is safe under
// a logarithm.
func (d *draws) float64() float64 {
	return (float64(d.next()>>11) + 1) / (1 << 53)
}

// Mix weights the three endpoints in the synthesized traffic. A zero
// weight removes the endpoint from the mix entirely.
type Mix struct {
	Run     int `json:"run"`
	Figure  int `json:"figure"`
	Profile int `json:"profile"`
}

// DefaultMix is run-heavy with occasional figure sweeps and profiles,
// roughly the shape an emxplot-driven analysis session produces.
var DefaultMix = Mix{Run: 8, Figure: 1, Profile: 1}

func (m Mix) total() int { return m.Run + m.Figure + m.Profile }

// String renders the mix in the ParseMix vocabulary.
func (m Mix) String() string {
	return fmt.Sprintf("run=%d,figure=%d,profile=%d", m.Run, m.Figure, m.Profile)
}

// ParseMix parses "run=8,figure=1,profile=1". Omitted endpoints get
// weight zero; at least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: bad mix term %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: bad mix weight %q for %q", val, name)
		}
		switch strings.TrimSpace(name) {
		case "run":
			m.Run = w
		case "figure":
			m.Figure = w
		case "profile":
			m.Profile = w
		default:
			return Mix{}, fmt.Errorf("load: unknown mix endpoint %q (want run, figure, or profile)", name)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("load: mix %q has no positive weight", s)
	}
	return m, nil
}

// Space is the parameter universe requests draw from. The zero value
// is usable: DefaultSpace fills every field.
type Space struct {
	// Scale and Seed are stamped explicitly into every request body, so
	// routing keys match no matter what defaults the target nodes run
	// with.
	Scale int
	Seed  int64
	// Ps and Hs are the processor and thread-depth choices.
	Ps []int
	Hs []int
	// Workloads are the /v1/run and /v1/profile workload choices.
	Workloads []string
	// Panels are the /v1/figure panel choices.
	Panels []string
	// Variants is how many distinct problem sizes each workload offers;
	// more variants means a colder target cache.
	Variants int
}

// DefaultSpace spans the paper's grid at the given scale and seed.
func DefaultSpace(scale int, seed int64) Space {
	if scale <= 0 {
		scale = harness.DefaultScale
	}
	if seed == 0 {
		seed = 1
	}
	return Space{
		Scale:     scale,
		Seed:      seed,
		Ps:        []int{4, 8, 16, 32, 64},
		Hs:        []int{1, 2, 4, 8, 16},
		Workloads: []string{"bitonic", "fft", "spmv"},
		Panels:    []string{"6a", "6b", "7a", "8a", "sched"},
		Variants:  4,
	}
}

// Request is one synthesized request: the endpoint, the routing key
// the cluster would derive for it, and the JSON body.
type Request struct {
	Endpoint string
	Key      string
	Body     []byte
}

// Generator derives requests from a seed. Request(i) is a pure
// function of (seed, space, mix, i): concurrent clients partition the
// index range and the aggregate traffic is independent of scheduling.
type Generator struct {
	seed  int64
	space Space
	mix   Mix
}

// NewGenerator validates the space against the serving path's own
// request resolution, so a generator that constructs is one whose
// every request the target will accept.
func NewGenerator(seed int64, space Space, mix Mix) (*Generator, error) {
	if mix.total() <= 0 {
		return nil, fmt.Errorf("load: mix has no positive weight")
	}
	if space.Scale <= 0 || space.Seed == 0 || len(space.Ps) == 0 || len(space.Hs) == 0 ||
		len(space.Workloads) == 0 || len(space.Panels) == 0 || space.Variants <= 0 {
		return nil, fmt.Errorf("load: space is missing fields (use DefaultSpace as a base)")
	}
	// Power-of-two scale, P, and H (with the power-of-two problem sizes
	// paperN picks) guarantee every derived simulation size satisfies
	// the workloads' divisibility rules: bitonic and FFT need
	// power-of-two N, spmv needs N divisible by P.
	if space.Scale&(space.Scale-1) != 0 {
		return nil, fmt.Errorf("load: scale must be a power of two, got %d", space.Scale)
	}
	for _, p := range space.Ps {
		if p < 1 || p&(p-1) != 0 {
			return nil, fmt.Errorf("load: P values must be powers of two, got %d", p)
		}
	}
	for _, h := range space.Hs {
		if h < 1 || h&(h-1) != 0 {
			return nil, fmt.Errorf("load: H values must be powers of two, got %d", h)
		}
	}
	for _, w := range space.Workloads {
		if _, err := harness.ParseWorkload(w); err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
	}
	for _, p := range space.Panels {
		if !harness.ValidPanel(p) {
			return nil, fmt.Errorf("load: unknown panel %q", p)
		}
	}
	sort.Ints(space.Ps)
	sort.Ints(space.Hs)
	sort.Strings(space.Workloads)
	sort.Strings(space.Panels)
	return &Generator{seed: seed, space: space, mix: mix}, nil
}

// paperN picks the paper-equivalent problem size for one workload
// variant: power-of-two multiples of M, so any power-of-two scale
// divides them into sizes every workload accepts. SpMV gets a
// genuinely large matrix even at huge scales; the sort and FFT sizes
// bracket the paper's 1M-element runs.
func (g *Generator) paperN(workload string, variant int) int {
	if workload == "spmv" {
		return 64 * harness.M << variant
	}
	return harness.M / 2 << variant
}

// runRequest derives the /v1/run body shared by run and profile
// traffic for index i.
func (g *Generator) runRequest(d *draws) service.RunRequest {
	w := g.space.Workloads[d.intn(len(g.space.Workloads))]
	return service.RunRequest{
		Workload: w,
		P:        g.space.Ps[d.intn(len(g.space.Ps))],
		H:        g.space.Hs[d.intn(len(g.space.Hs))],
		N:        g.paperN(w, d.intn(g.space.Variants)),
		Scale:    g.space.Scale,
		Seed:     g.space.Seed,
	}
}

// Request derives the i-th request. The routing key is computed with
// the same request→identity mapping the cluster gateway uses, so a
// load run exercises the real sharding.
func (g *Generator) Request(i uint64) Request {
	d := drawsAt(g.seed, i)
	pick := d.intn(g.mix.total())
	switch {
	case pick < g.mix.Run:
		req := g.runRequest(d)
		ps, scale, err := service.ResolveRun(req, g.space.Scale, g.space.Seed)
		if err != nil {
			panic(fmt.Sprintf("load: generator produced invalid run request: %v", err))
		}
		body, _ := json.Marshal(req)
		return Request{Endpoint: "/v1/run", Key: ps.Key(scale), Body: body}
	case pick < g.mix.Run+g.mix.Figure:
		fig := g.space.Panels[d.intn(len(g.space.Panels))]
		req := service.FigureRequest{Fig: fig, Scale: g.space.Scale, Seed: g.space.Seed}
		body, _ := json.Marshal(req)
		return Request{
			Endpoint: "/v1/figure",
			Key:      cluster.FigureKey(fig, g.space.Scale, g.space.Seed),
			Body:     body,
		}
	default:
		req := service.ProfileRequest{RunRequest: g.runRequest(d)}
		ps, scale, err := service.ResolveRun(req.RunRequest, g.space.Scale, g.space.Seed)
		if err != nil {
			panic(fmt.Sprintf("load: generator produced invalid profile request: %v", err))
		}
		body, _ := json.Marshal(req)
		return Request{Endpoint: "/v1/profile", Key: ps.Key(scale), Body: body}
	}
}
