// Package trace records thread lifecycle events from a simulation and
// renders Figure-4/5-style timelines: per-thread bands over time showing
// running, switching, and suspended phases, exactly the diagrams the
// paper uses to explain multithreaded bitonic sorting and FFT.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"emx/internal/core"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/sim"
)

// Recorder accumulates trace events in a bounded ring. Install with
// machine.SetTracer (Recorder.Record) before Run. The zero value is
// ready to use with the default capacity; when a run produces more
// events than fit, the oldest are overwritten and counted in Dropped —
// memory stays bounded no matter how long the simulation runs.
type Recorder struct {
	ring    *obs.Ring[core.TraceEvent]
	dropped uint64
}

// NewRecorder builds a recorder holding at most capacity events
// (capacity <= 0 selects the default, obs.DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{ring: obs.NewRing[core.TraceEvent](capacity)}
}

// Record appends one event (the core.Machine tracer callback).
func (r *Recorder) Record(ev core.TraceEvent) {
	if r.ring == nil {
		r.ring = obs.NewRing[core.TraceEvent](0)
	}
	if _, evicted := r.ring.Push(ev); evicted {
		r.dropped++
	}
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []core.TraceEvent {
	if r.ring == nil {
		return nil
	}
	return r.ring.Snapshot()
}

// Dropped reports how many events were overwritten because the ring
// filled. A timeline rendered from a recorder with drops is missing its
// earliest bands.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// threadKey identifies a thread band.
type threadKey struct {
	pe    packet.PE
	frame uint32
}

// Interval is a contiguous phase of one thread.
type Interval struct {
	From, To sim.Time
	State    State
}

// State is a thread's coarse condition during an interval.
type State uint8

const (
	// Running: the thread owns the EXU.
	Running State = iota
	// Suspended: waiting for a remote read or queued behind other threads.
	Suspended
)

// Timeline is one thread's reconstructed band.
type Timeline struct {
	PE        packet.PE
	Frame     uint32
	Name      string
	Intervals []Interval
	End       sim.Time
}

// Timelines reconstructs per-thread intervals from the recorded events.
// Threads are ordered by PE, then by first activity.
func (r *Recorder) Timelines() []Timeline {
	byThread := map[threadKey]*Timeline{}
	var order []threadKey
	openAt := map[threadKey]sim.Time{} // start of current running interval
	for _, ev := range r.Events() {
		k := threadKey{ev.PE, ev.Frame}
		tl, ok := byThread[k]
		if !ok {
			tl = &Timeline{PE: ev.PE, Frame: ev.Frame, Name: ev.Thread}
			byThread[k] = tl
			order = append(order, k)
		}
		switch ev.Kind {
		case core.TraceStart, core.TraceRun:
			openAt[k] = ev.At
		case core.TraceReadIssue, core.TraceYield, core.TraceEnd:
			if from, open := openAt[k]; open {
				tl.Intervals = append(tl.Intervals, Interval{From: from, To: ev.At, State: Running})
				delete(openAt, k)
			}
			tl.End = ev.At
		}
	}
	out := make([]Timeline, 0, len(order))
	for _, k := range order {
		out = append(out, *byThread[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PE != out[j].PE {
			return out[i].PE < out[j].PE
		}
		return out[i].Frame < out[j].Frame
	})
	return out
}

// Gantt renders the timelines as text, width columns wide:
//
//	'=' running on the EXU, '.' suspended/queued, ' ' not yet started /
//	finished — the rendering of the paper's Figure 4 and 5 bands.
func (r *Recorder) Gantt(width int) string {
	tls := r.Timelines()
	if len(tls) == 0 {
		return "(no trace events)\n"
	}
	if width < 10 {
		width = 10
	}
	var horizon sim.Time
	for _, tl := range tls {
		if tl.End > horizon {
			horizon = tl.End
		}
	}
	if horizon == 0 {
		horizon = 1
	}
	labelW := 0
	for _, tl := range tls {
		if n := len(label(tl)); n > labelW {
			labelW = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %d cycles (%.2f us), one column = %.1f cycles\n",
		horizon, horizon.Micros(), float64(horizon)/float64(width))
	scale := func(t sim.Time) int {
		c := int(int64(t) * int64(width) / int64(horizon))
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, tl := range tls {
		row := make([]byte, width)
		var first, last sim.Time = -1, tl.End
		for _, iv := range tl.Intervals {
			if first < 0 || iv.From < first {
				first = iv.From
			}
		}
		if first < 0 {
			first = 0
		}
		for c := scale(first); c <= scale(last); c++ {
			row[c] = '.'
		}
		for _, iv := range tl.Intervals {
			for c := scale(iv.From); c <= scale(iv.To) && c < width; c++ {
				row[c] = '='
			}
		}
		for i := range row {
			if row[i] == 0 {
				row[i] = ' '
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, label(tl), string(row))
	}
	b.WriteString("legend: '=' running   '.' suspended/queued   ' ' inactive\n")
	return b.String()
}

func label(tl Timeline) string {
	return fmt.Sprintf("PE%d %s", tl.PE, tl.Name)
}

// Summary reports per-PE event counts, useful for quick inspection.
func (r *Recorder) Summary() string {
	counts := map[packet.PE]map[core.TraceKind]int{}
	var pes []packet.PE
	for _, ev := range r.Events() {
		if counts[ev.PE] == nil {
			counts[ev.PE] = map[core.TraceKind]int{}
			pes = append(pes, ev.PE)
		}
		counts[ev.PE][ev.Kind]++
	}
	sort.Slice(pes, func(i, j int) bool { return pes[i] < pes[j] })
	var b strings.Builder
	for _, pe := range pes {
		c := counts[pe]
		fmt.Fprintf(&b, "PE%d: %d starts, %d resumes, %d reads, %d yields, %d ends\n",
			pe, c[core.TraceStart], c[core.TraceRun], c[core.TraceReadIssue],
			c[core.TraceYield], c[core.TraceEnd])
	}
	return b.String()
}
