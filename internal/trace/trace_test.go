package trace

import (
	"strings"
	"testing"

	"emx/internal/core"
	"emx/internal/packet"
	"emx/internal/sim"
)

// runTraced reproduces the paper's Figure 4 setup: two PEs, two threads
// each, reading from the mate and computing.
func runTraced(t *testing.T) *Recorder {
	t.Helper()
	cfg := core.DefaultConfig(2)
	cfg.MemWords = 1 << 10
	cfg.MaxCycles = 1_000_000
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	m.SetTracer(rec.Record)
	for pe := packet.PE(0); pe < 2; pe++ {
		pe := pe
		for th := 0; th < 2; th++ {
			th := th
			m.SpawnAt(pe, "thd", packet.Word(th), func(tc *core.TC) {
				mate := 1 - pe
				for k := 0; k < 4; k++ {
					tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(th*4 + k)})
					tc.Compute(15)
				}
			})
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec := runTraced(t)
	var starts, ends, reads, runs int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case core.TraceStart:
			starts++
		case core.TraceEnd:
			ends++
		case core.TraceReadIssue:
			reads++
		case core.TraceRun:
			runs++
		}
	}
	if starts != 4 || ends != 4 {
		t.Fatalf("starts=%d ends=%d, want 4,4", starts, ends)
	}
	if reads != 16 {
		t.Fatalf("read issues = %d, want 16", reads)
	}
	if runs != reads {
		t.Fatalf("resumes = %d, want %d (one per read)", runs, reads)
	}
	// Events must be time-ordered.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped %d events with default capacity", rec.Dropped())
	}
}

// TestRecorderBounded: a tiny ring keeps the newest events and counts
// what it overwrote, so memory stays constant on arbitrarily long runs.
func TestRecorderBounded(t *testing.T) {
	rec := NewRecorder(8)
	for i := 0; i < 100; i++ {
		rec.Record(core.TraceEvent{At: sim.Time(1000 + i)})
	}
	evs := rec.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	if rec.Dropped() != 92 {
		t.Fatalf("dropped = %d, want 92", rec.Dropped())
	}
	if evs[0].At != 1092 || evs[7].At != 1099 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", evs[0].At, evs[7].At)
	}
}

func TestTimelinesAlternateRunSuspend(t *testing.T) {
	rec := runTraced(t)
	tls := rec.Timelines()
	if len(tls) != 4 {
		t.Fatalf("timelines = %d, want 4", len(tls))
	}
	for _, tl := range tls {
		// 1 start + 4 reads -> 5 running intervals per thread.
		if len(tl.Intervals) != 5 {
			t.Fatalf("%s PE%d: %d intervals, want 5", tl.Name, tl.PE, len(tl.Intervals))
		}
		for i, iv := range tl.Intervals {
			if iv.To < iv.From {
				t.Fatalf("interval %d inverted: %+v", i, iv)
			}
			if i > 0 && iv.From < tl.Intervals[i-1].To {
				t.Fatalf("intervals overlap: %+v then %+v", tl.Intervals[i-1], iv)
			}
		}
	}
}

func TestNoTwoThreadsRunConcurrentlyOnOnePE(t *testing.T) {
	// The EXU runs one thread at a time: running intervals of threads on
	// the same PE must not overlap.
	rec := runTraced(t)
	tls := rec.Timelines()
	for i := range tls {
		for j := i + 1; j < len(tls); j++ {
			if tls[i].PE != tls[j].PE {
				continue
			}
			for _, a := range tls[i].Intervals {
				for _, b := range tls[j].Intervals {
					if a.From < b.To && b.From < a.To {
						t.Fatalf("PE%d: overlap %+v and %+v", tls[i].PE, a, b)
					}
				}
			}
		}
	}
}

func TestGanttRendering(t *testing.T) {
	rec := runTraced(t)
	g := rec.Gantt(60)
	if !strings.Contains(g, "PE0 thd") || !strings.Contains(g, "PE1 thd") {
		t.Fatalf("gantt missing thread rows:\n%s", g)
	}
	if !strings.Contains(g, "=") || !strings.Contains(g, "legend") {
		t.Fatalf("gantt missing bands:\n%s", g)
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 6 { // header + 4 threads + legend
		t.Fatalf("gantt has %d lines:\n%s", len(lines), g)
	}
}

func TestGanttEmpty(t *testing.T) {
	rec := &Recorder{}
	if !strings.Contains(rec.Gantt(40), "no trace events") {
		t.Fatal("empty recorder should say so")
	}
}

func TestSummary(t *testing.T) {
	rec := runTraced(t)
	s := rec.Summary()
	if !strings.Contains(s, "PE0:") || !strings.Contains(s, "PE1:") {
		t.Fatalf("summary:\n%s", s)
	}
	if !strings.Contains(s, "8 reads") {
		t.Fatalf("summary read counts wrong:\n%s", s)
	}
}
