// Package network models the EM-X interconnect: a circular Omega network
// built from the Switching Units of the PEs themselves. Every node is a
// 3x3 crossbar switch (two network input ports, two network output ports,
// one processor port) attached to one PE; links follow the perfect-shuffle
// permutation, and destination-tag routing delivers any packet in exactly
// log2(P) link hops.
//
// Timing follows the paper's description of the EMC-Y Switching Unit:
//
//   - virtual cut-through: the head of a packet moves one hop per cycle, so
//     a packet reaches a processor k hops away in k+1 cycles when unloaded;
//   - each port transfers one two-word packet every second cycle, so an
//     output port is occupied for 2 cycles per packet (throughput), while
//     the head is forwarded after 1 cycle (latency);
//   - ports are FIFO, which enforces the message non-overtaking rule.
//
// # Sharded execution
//
// The fabric can be partitioned across the member engines of a
// sim.Group (NewSharded): each switch node — its two output ports and
// its processor port — is owned by the shard that owns its PE, every
// handler runs on the owner's engine, and a packet moving between nodes
// of different shards crosses via sim.AtHandlerOn, the group's
// deterministic cross-shard channel. Counters and observability are
// kept per shard (each shard writes only its own row) and summed by
// Total, so a sharded run reproduces the single-engine totals exactly.
package network

import (
	"fmt"
	"math/bits"

	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/sim"
)

// HopCycles is the per-hop head latency under virtual cut-through routing.
const HopCycles sim.Time = 1

// PortCycles is the output-port occupancy per two-word packet
// (one word per clock, every second cycle per the paper).
const PortCycles sim.Time = 2

// DeliverFunc receives a packet at its destination PE (the IBU input).
type DeliverFunc func(p *packet.Packet)

// Stats aggregates network-wide counters.
type Stats struct {
	Sent       uint64   // packets injected
	Delivered  uint64   // packets handed to destination PEs
	Hops       uint64   // total link hops traversed
	QueueDelay sim.Time // total cycles packets waited for busy ports
	LocalShort uint64   // self-addressed packets short-circuited OBU->IBU
}

// add accumulates other into s.
func (s *Stats) add(other *Stats) {
	s.Sent += other.Sent
	s.Delivered += other.Delivered
	s.Hops += other.Hops
	s.QueueDelay += other.QueueDelay
	s.LocalShort += other.LocalShort
}

// Network is the circular Omega interconnect for P processors. P may be
// any size >= 2 on a single engine: the switch fabric is built over the
// next power of two (the 80-PE prototype routes through a 128-node
// shuffle, with the excess nodes acting as pure switch stages), and
// packets originate and terminate only at the P real PEs.
type Network struct {
	engs   []*sim.Engine // one engine per shard; len 1 when unsharded
	nodeSh []int         // owning shard of each switch node
	p      int           // attached processors
	nodes  int           // switch nodes: next power of two >= p
	l      int           // log2(nodes): route length in hops
	mask   int

	// ports[v][b] is node v's network output port b (shuffle links).
	ports [][2]sim.Resource
	// eject[v] is node v's processor port toward its PE/IBU.
	eject   []sim.Resource
	deliver []DeliverFunc

	// Prepared handlers for the engine's allocation-free event lane.
	hHop     sim.Handler
	hArrive  sim.Handler
	hDeliver sim.Handler

	// obs[s], when non-nil, records shard s's per-hop latency and
	// port-contention stalls, attributed to the packet's destination PE.
	obs []*obs.Tracer

	// stats[s] is written only by shard s's worker; Total sums the rows.
	stats []Stats
}

// SetObs installs the observability tracer on every shard row. For a
// sharded network this is only safe with tracers that tolerate
// concurrent use — machines install distinct per-shard children via
// SetObsShards instead. A nil tracer (the default) disables recording.
func (n *Network) SetObs(t *obs.Tracer) {
	for i := range n.obs {
		n.obs[i] = t
	}
}

// SetObsShards installs one tracer per shard (len must match the member
// engine count). Each shard records only into its own tracer.
func (n *Network) SetObsShards(ts []*obs.Tracer) {
	if len(ts) != len(n.engs) {
		panic(fmt.Sprintf("network: %d shard tracers for %d shards", len(ts), len(n.engs)))
	}
	copy(n.obs, ts)
}

// hopH forwards a packet one switch hop. EventArg packs the packet in
// Ptr and (node, hopsLeft) in N.
type hopH struct{ n *Network }

func (h hopH) OnEvent(arg sim.EventArg) {
	h.n.hop(arg.Ptr.(*packet.Packet), int(arg.N>>32), int(arg.N&0xffffffff))
}

// arriveH moves a packet into its destination switch's processor port.
type arriveH struct{ n *Network }

func (h arriveH) OnEvent(arg sim.EventArg) { h.n.arriveDst(arg.Ptr.(*packet.Packet)) }

// deliverH hands a packet to the destination PE's IBU callback.
type deliverH struct{ n *Network }

func (h deliverH) OnEvent(arg sim.EventArg) {
	p := arg.Ptr.(*packet.Packet)
	dst := p.Dst()
	h.n.stats[h.n.nodeSh[dst]].Delivered++
	if fn := h.n.deliver[dst]; fn != nil {
		fn(p)
	}
}

// New builds the network for p PEs on a single engine.
func New(eng *sim.Engine, p int) (*Network, error) {
	return NewSharded([]*sim.Engine{eng}, p)
}

// NewSharded builds the network for p PEs partitioned across the member
// engines of a sim.Group (members in shard order). With more than one
// member, p must be a power of two so that every switch node is a real
// PE's Switching Unit and the node partition coincides with the PE
// partition (node v belongs to shard v*S/p, the same contiguous blocks
// the machine uses for PEs).
func NewSharded(members []*sim.Engine, p int) (*Network, error) {
	if p < 2 {
		return nil, fmt.Errorf("network: need at least 2 PEs, got %d", p)
	}
	if len(members) < 1 {
		return nil, fmt.Errorf("network: need at least 1 member engine")
	}
	nodes := 1 << uint(bits.Len(uint(p-1)))
	if s := len(members); s > 1 && nodes != p {
		return nil, fmt.Errorf("network: sharded fabric needs a power-of-two PE count, got %d", p)
	}
	n := &Network{
		engs:    members,
		nodeSh:  make([]int, nodes),
		p:       p,
		nodes:   nodes,
		l:       bits.Len(uint(nodes)) - 1,
		mask:    nodes - 1,
		ports:   make([][2]sim.Resource, nodes),
		eject:   make([]sim.Resource, p),
		deliver: make([]DeliverFunc, p),
		obs:     make([]*obs.Tracer, len(members)),
		stats:   make([]Stats, len(members)),
	}
	for v := range n.nodeSh {
		n.nodeSh[v] = v * len(members) / nodes
	}
	n.hHop = hopH{n}
	n.hArrive = arriveH{n}
	n.hDeliver = deliverH{n}
	return n, nil
}

// P returns the number of processors.
func (n *Network) P() int { return n.p }

// Total sums the per-shard counter rows into network-wide totals. The
// partition of counter updates across shards is deterministic, so the
// totals match the single-engine run exactly. Call between runs, not
// while the group is dispatching.
func (n *Network) Total() Stats {
	var t Stats
	for i := range n.stats {
		t.add(&n.stats[i])
	}
	return t
}

// RouteHops returns the number of link hops between src and dst: 0 for a
// self-send (short-circuited inside the SU) and log2(P) otherwise, the
// fixed route length of destination-tag routing on the shuffle network.
func (n *Network) RouteHops(src, dst packet.PE) int {
	if src == dst {
		return 0
	}
	return n.l
}

// SetDeliver installs the destination callback (the PE's IBU) for a node.
func (n *Network) SetDeliver(pe packet.PE, fn DeliverFunc) {
	n.deliver[pe] = fn
}

// Send injects a packet at its source node at the current simulated
// time. It must be called from the source PE's shard (the only callers
// are the source PE's OBU paths). The packet is eventually handed to
// the destination's DeliverFunc on the destination's shard.
func (n *Network) Send(p *packet.Packet) {
	dst := p.Dst()
	if int(dst) >= n.p || dst < 0 {
		panic(fmt.Sprintf("network: packet to PE%d on a %d-PE machine", dst, n.p))
	}
	if int(p.Src) >= n.p || p.Src < 0 {
		panic(fmt.Sprintf("network: packet from PE%d on a %d-PE machine", p.Src, n.p))
	}
	sh := n.nodeSh[p.Src]
	n.stats[sh].Sent++
	if p.Src == dst {
		// The SU short-circuits self-addressed packets from the OBU to the
		// IBU through the crossbar processor port: one cycle, no links.
		n.stats[sh].LocalShort++
		n.engs[sh].AfterHandler(0, n.hArrive, sim.EventArg{Ptr: p})
		return
	}
	n.hop(p, int(p.Src), n.l)
}

// hop forwards the packet from node v with hopsLeft route bits
// remaining. It runs on v's owner shard: the output port and counter
// row it touches belong to that shard, and the next node's event is
// scheduled on the next owner's engine.
//
//emx:hotpath
func (n *Network) hop(p *packet.Packet, v, hopsLeft int) {
	sh := n.nodeSh[v]
	e := n.engs[sh]
	st := &n.stats[sh]
	now := e.Now()
	dst := int(p.Dst())
	bit := (dst >> (hopsLeft - 1)) & 1
	next := ((v << 1) | bit) & n.mask

	port := &n.ports[v][bit]
	start := now
	if f := port.FreeAt(); f > start {
		start = f
		st.QueueDelay += start - now
	}
	port.Acquire(start, PortCycles)
	st.Hops++
	n.obs[sh].Hop(int64(now), int32(p.Dst()), obs.NetHop, int64(start-now))

	headAt := start + HopCycles
	if hopsLeft == 1 {
		// next == dst: the last route bit lands the packet on the
		// destination's own switch node.
		e.AtHandlerOn(n.engs[n.nodeSh[next]], headAt, n.hArrive, sim.EventArg{Ptr: p})
		return
	}
	e.AtHandlerOn(n.engs[n.nodeSh[next]], headAt, n.hHop, sim.EventArg{
		Ptr: p,
		N:   int64(next)<<32 | int64(hopsLeft-1),
	})
}

// arriveDst moves the packet through the destination switch's processor
// port into the PE. It runs on the destination's owner shard.
//
//emx:hotpath
func (n *Network) arriveDst(p *packet.Packet) {
	dst := p.Dst()
	sh := n.nodeSh[dst]
	e := n.engs[sh]
	st := &n.stats[sh]
	now := e.Now()
	port := &n.eject[dst]
	start := now
	if f := port.FreeAt(); f > start {
		start = f
		st.QueueDelay += start - now
	}
	port.Acquire(start, PortCycles)
	n.obs[sh].Hop(int64(now), int32(dst), obs.NetEject, int64(start-now))
	e.AtHandler(start+HopCycles, n.hDeliver, sim.EventArg{Ptr: p})
}

// UnloadedLatency returns the cycles from injection to delivery on an idle
// network: k hops + 1 ejection cycle for remote sends, 1 for self-sends.
func (n *Network) UnloadedLatency(src, dst packet.PE) sim.Time {
	return sim.Time(n.RouteHops(src, dst))*HopCycles + HopCycles
}
