package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emx/internal/packet"
	"emx/internal/sim"
)

func build(t testing.TB, p int) (*sim.Engine, *Network, [][]*packet.Packet) {
	t.Helper()
	eng := sim.NewEngine()
	n, err := New(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]*packet.Packet, p)
	for pe := 0; pe < p; pe++ {
		pe := pe
		n.SetDeliver(packet.PE(pe), func(pkt *packet.Packet) {
			got[pe] = append(got[pe], pkt)
		})
	}
	return eng, n, got
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	for _, p := range []int{0, 1, -4} {
		if _, err := New(eng, p); err == nil {
			t.Errorf("New(%d) accepted", p)
		}
	}
	for _, p := range []int{2, 3, 16, 64, 80, 128} {
		if _, err := New(eng, p); err != nil {
			t.Errorf("New(%d): %v", p, err)
		}
	}
}

func TestUnloadedLatencyMatchesPaper(t *testing.T) {
	// "A packet can be transferred in k+1 cycles to the processor k hops
	// beyond": with log2(P) hops per route, delivery takes log2(P)+1.
	for _, p := range []int{16, 64} {
		eng, n, got := build(t, p)
		pkt := &packet.Packet{Kind: packet.KindWrite, Src: 0,
			Addr: packet.GlobalAddr{PE: packet.PE(p - 1), Off: 0}}
		var deliveredAt sim.Time = -1
		n.SetDeliver(packet.PE(p-1), func(q *packet.Packet) { deliveredAt = eng.Now() })
		eng.At(0, func() { n.Send(pkt) })
		eng.Run()
		want := n.UnloadedLatency(0, packet.PE(p-1))
		if deliveredAt != want {
			t.Errorf("P=%d: delivered at %d, want %d", p, deliveredAt, want)
		}
		if wantHops := sim.Time(n.l) + 1; want != wantHops {
			t.Errorf("P=%d: unloaded latency %d, want log2(P)+1 = %d", p, want, wantHops)
		}
		_ = got
	}
}

func TestSelfSendShortCircuit(t *testing.T) {
	eng, n, got := build(t, 16)
	pkt := &packet.Packet{Kind: packet.KindWrite, Src: 5, Addr: packet.GlobalAddr{PE: 5}}
	eng.At(10, func() { n.Send(pkt) })
	eng.Run()
	if len(got[5]) != 1 {
		t.Fatalf("self packet not delivered")
	}
	if eng.Now() != 10+1 {
		t.Fatalf("self-send delivered at %d, want 11", eng.Now())
	}
	if n.Total().Hops != 0 || n.Total().LocalShort != 1 {
		t.Fatalf("self-send took %d link hops", n.Total().Hops)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every (src, dst) pair must deliver to exactly the addressed PE.
	for _, p := range []int{4, 16, 32} {
		eng, n, got := build(t, p)
		want := make([]int, p)
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				pkt := &packet.Packet{
					Kind: packet.KindWrite,
					Src:  packet.PE(s),
					Addr: packet.GlobalAddr{PE: packet.PE(d), Off: uint32(s)},
				}
				eng.At(sim.Time(s*p+d)*10, func() { n.Send(pkt) })
				want[d]++
			}
		}
		eng.Run()
		for d := 0; d < p; d++ {
			if len(got[d]) != want[d] {
				t.Fatalf("P=%d: PE%d received %d packets, want %d", p, d, len(got[d]), want[d])
			}
			for _, pkt := range got[d] {
				if pkt.Dst() != packet.PE(d) {
					t.Fatalf("P=%d: PE%d received packet for %d", p, d, pkt.Dst())
				}
			}
		}
		if n.Total().Sent != uint64(p*p) || n.Total().Delivered != uint64(p*p) {
			t.Fatalf("P=%d: sent=%d delivered=%d, want %d", p, n.Total().Sent, n.Total().Delivered, p*p)
		}
	}
}

func TestReadReplyRoutesToContinuation(t *testing.T) {
	eng, n, got := build(t, 8)
	pkt := &packet.Packet{
		Kind: packet.KindReadReply,
		Src:  3,
		Addr: packet.GlobalAddr{PE: 3, Off: 9}, // the address that was read
		Cont: packet.Continuation{PE: 6, Frame: 1, Slot: 0},
	}
	eng.At(0, func() { n.Send(pkt) })
	eng.Run()
	if len(got[6]) != 1 || len(got[3]) != 0 {
		t.Fatalf("reply delivered to wrong node: got3=%d got6=%d", len(got[3]), len(got[6]))
	}
}

func TestPortContentionDelaysSecondPacket(t *testing.T) {
	// Two packets injected at the same cycle from the same source to the
	// same destination share every port on the path: the second must
	// arrive exactly PortCycles later than the first.
	eng, n, _ := build(t, 16)
	var times []sim.Time
	n.SetDeliver(7, func(q *packet.Packet) { times = append(times, eng.Now()) })
	for i := 0; i < 2; i++ {
		pkt := &packet.Packet{Kind: packet.KindWrite, Src: 0, Addr: packet.GlobalAddr{PE: 7}}
		eng.At(0, func() { n.Send(pkt) })
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	if times[1]-times[0] != PortCycles {
		t.Fatalf("spacing = %d, want %d (port bandwidth)", times[1]-times[0], PortCycles)
	}
	if n.Total().QueueDelay == 0 {
		t.Fatal("contention produced no queueing delay")
	}
}

func TestNonOvertaking(t *testing.T) {
	// Property: packets between the same (src, dst) pair are delivered in
	// injection order, for arbitrary background traffic.
	check := func(seed int64) bool {
		eng, n, _ := build(t, 16)
		rng := rand.New(rand.NewSource(seed))
		var order []uint64
		n.SetDeliver(13, func(q *packet.Packet) {
			if q.Src == 2 && q.Seq < 1000 {
				order = append(order, q.Seq)
			}
		})
		// Stream under test: PE2 -> PE13.
		for i := 0; i < 50; i++ {
			pkt := &packet.Packet{Kind: packet.KindWrite, Src: 2,
				Addr: packet.GlobalAddr{PE: 13}, Seq: uint64(i)}
			eng.At(sim.Time(i), func() { n.Send(pkt) })
		}
		// Background noise from random sources to random destinations.
		for i := 0; i < 300; i++ {
			src := packet.PE(rng.Intn(16))
			dst := packet.PE(rng.Intn(16))
			pkt := &packet.Packet{Kind: packet.KindWrite, Src: src,
				Addr: packet.GlobalAddr{PE: dst}, Seq: 1000 + uint64(i)}
			eng.At(sim.Time(rng.Intn(60)), func() { n.Send(pkt) })
		}
		eng.Run()
		if len(order) != 50 {
			return false
		}
		for i, seq := range order {
			if seq != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketConservationProperty(t *testing.T) {
	// Property: every injected packet is delivered exactly once.
	check := func(seed int64, burst uint8) bool {
		p := 32
		eng, n, got := build(t, p)
		rng := rand.New(rand.NewSource(seed))
		total := 50 + int(burst)
		for i := 0; i < total; i++ {
			pkt := &packet.Packet{Kind: packet.KindWrite,
				Src:  packet.PE(rng.Intn(p)),
				Addr: packet.GlobalAddr{PE: packet.PE(rng.Intn(p))}}
			eng.At(sim.Time(rng.Intn(100)), func() { n.Send(pkt) })
		}
		eng.Run()
		sum := 0
		for _, g := range got {
			sum += len(g)
		}
		return sum == total && n.Total().Delivered == uint64(total)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteHops(t *testing.T) {
	eng := sim.NewEngine()
	n, _ := New(eng, 64)
	if n.RouteHops(3, 3) != 0 {
		t.Error("self route should be 0 hops")
	}
	if n.RouteHops(0, 1) != 6 || n.RouteHops(63, 0) != 6 {
		t.Error("remote routes on P=64 should be 6 hops")
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	n, _ := New(eng, 8)
	for _, pkt := range []*packet.Packet{
		{Kind: packet.KindWrite, Src: 0, Addr: packet.GlobalAddr{PE: 8}},
		{Kind: packet.KindWrite, Src: 9, Addr: packet.GlobalAddr{PE: 1}},
		{Kind: packet.KindWrite, Src: -1, Addr: packet.GlobalAddr{PE: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%v) did not panic", pkt)
				}
			}()
			n.Send(pkt)
		}()
	}
}

func BenchmarkNetworkRandomTraffic(b *testing.B) {
	eng := sim.NewEngine()
	n, _ := New(eng, 64)
	for pe := 0; pe < 64; pe++ {
		n.SetDeliver(packet.PE(pe), func(*packet.Packet) {})
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &packet.Packet{Kind: packet.KindWrite,
			Src:  packet.PE(rng.Intn(64)),
			Addr: packet.GlobalAddr{PE: packet.PE(rng.Intn(64))}}
		eng.After(sim.Time(rng.Intn(4)), func() { n.Send(pkt) })
		if eng.Pending() > 4096 {
			eng.RunUntil(eng.Now() + 64)
		}
	}
	eng.Run()
}

func TestPrototype80PEDelivery(t *testing.T) {
	// The real EM-X has 80 PEs: routing goes through a 128-node shuffle
	// fabric. Every (src, dst) pair must still deliver exactly once.
	eng, n, got := build(t, 80)
	total := 0
	for s := 0; s < 80; s += 7 {
		for d := 0; d < 80; d += 3 {
			pkt := &packet.Packet{Kind: packet.KindWrite,
				Src: packet.PE(s), Addr: packet.GlobalAddr{PE: packet.PE(d)}}
			eng.At(sim.Time(total%50), func() { n.Send(pkt) })
			total++
		}
	}
	eng.Run()
	sum := 0
	for _, g := range got {
		sum += len(g)
	}
	if sum != total {
		t.Fatalf("delivered %d of %d", sum, total)
	}
	if n.RouteHops(0, 79) != 7 { // log2(128)
		t.Fatalf("80-PE route hops = %d, want 7", n.RouteHops(0, 79))
	}
}
